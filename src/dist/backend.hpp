// ExecBackend — pluggable execution strategy for edge-local rounds.
//
// The solver's rounds are all of one shape: "every edge of a subset updates
// its own state from committed neighbor state".  That step is embarrassingly
// parallel within the round, so the SolverEngine routes it through this
// interface instead of iterating inline: SerialBackend runs the step on the
// calling thread (the seed behavior, and the right choice for the small
// instances the batch runtime sweeps), ShardedBackend fans the subset out
// over contiguous degree-balanced edge shards on a ThreadPool and joins at
// the round barrier.
//
// Contract for step functions fn(lane, e):
//   * fn may mutate only state owned by edge e (its working list, its final
//     color, per-edge scratch slots) plus accumulators indexed by `lane`
//     (see DeterministicReducer);
//   * fn must not charge the ledger (the caller charges the round once,
//     outside the parallel region) and must not recurse into the engine.
// Lanes cover contiguous ascending id ranges, so per-lane partial results
// concatenated in lane order are in global id order regardless of the shard
// count — together with order-invariant folds this makes sharded execution
// bit-identical to serial execution.
#pragma once

#include <functional>
#include <memory>

#include "src/dist/partition.hpp"
#include "src/graph/subset.hpp"

namespace qplec {

class ThreadPool;

/// Execution-backend selection carried by the Solver (and by the batch
/// runtime, which routes instances by size).
struct ExecOptions {
  /// Number of shards one instance is split into; <= 1 runs serial.
  int shards = 1;
  /// Worker threads backing the sharded backend; <= 0 picks
  /// min(shards, hardware concurrency).
  int num_threads = 0;
  /// Instances with fewer edges than this stay on the serial path even when
  /// shards > 1 (per-round fan-out overhead dwarfs the step work below it).
  int min_sharded_edges = 20000;

  /// True when this configuration shards a graph of `num_edges` edges.
  bool wants_sharding(int num_edges) const {
    return shards > 1 && num_edges >= min_sharded_edges;
  }

  /// Shard count a solve over `num_edges` edges actually runs with: 1 on the
  /// serial path, otherwise the configured count after the partitioner's
  /// clamp to the edge-id universe.  The single source of truth for
  /// reporting.
  int effective_shards(int num_edges) const {
    if (!wants_sharding(num_edges)) return 1;
    return shards < num_edges ? shards : (num_edges > 1 ? num_edges : 1);
  }
};

class ExecBackend {
 public:
  virtual ~ExecBackend() = default;

  /// Number of reduction lanes step functions may index (1 for serial).
  virtual int lanes() const = 0;

  /// Runs fn(lane, e) for every member of s, each exactly once; blocks until
  /// all steps finished (the round barrier).  Exceptions from fn propagate.
  virtual void for_members(const EdgeSubset& s,
                           const std::function<void(int, EdgeId)>& fn) const = 0;

  /// Runs fn(lane, i) for every i in [0, count); lanes cover contiguous
  /// ascending index blocks.
  virtual void for_indices(int count, const std::function<void(int, int)>& fn) const = 0;
};

/// The seed execution strategy: one lane, steps on the calling thread.
class SerialBackend final : public ExecBackend {
 public:
  int lanes() const override { return 1; }
  void for_members(const EdgeSubset& s,
                   const std::function<void(int, EdgeId)>& fn) const override;
  void for_indices(int count, const std::function<void(int, int)>& fn) const override;
};

/// The process-wide serial backend (stateless, shared by every engine that
/// was not handed a sharded one).
const ExecBackend& serial_backend();

/// Shards the edge-id universe of one graph over a thread pool.  One lane
/// per edge shard; for_members iterates each shard's id range on its own
/// worker.  The pool must outlive the backend.
class ShardedBackend final : public ExecBackend {
 public:
  ShardedBackend(const Graph& g, int shards, ThreadPool& pool);

  int lanes() const override { return partition_.num_shards(); }
  const EdgePartition& partition() const { return partition_; }

  void for_members(const EdgeSubset& s,
                   const std::function<void(int, EdgeId)>& fn) const override;
  void for_indices(int count, const std::function<void(int, int)>& fn) const override;

 private:
  const Graph* g_;
  EdgePartition partition_;
  ThreadPool* pool_;
};

/// Bundles the pool + backend lifetime for one sharded solve: the Solver
/// materializes one of these per instance it decides to shard.
class ShardedExecution {
 public:
  ShardedExecution(const Graph& g, const ExecOptions& options);
  ~ShardedExecution();

  const ExecBackend& backend() const { return *backend_; }

 private:
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ShardedBackend> backend_;
};

}  // namespace qplec
