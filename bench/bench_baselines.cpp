// EXP-BASE — head-to-head across graph families: rounds, wall time and
// colors used for every runnable algorithm on the standard (2 Delta - 1)
// instance and on random (deg+1)-list instances.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/support.hpp"
#include "src/coloring/baselines.hpp"
#include "src/coloring/greedy.hpp"
#include "src/core/solver.hpp"
#include "src/graph/generators.hpp"

namespace {

using namespace qplec;
using namespace qplec::bench;

int colors_used(const EdgeColoring& colors) {
  std::vector<Color> sorted(colors);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return static_cast<int>(sorted.size());
}

void run_family(Table& t, const char* name, Graph graph) {
  const Graph g = graph.with_scrambled_ids(
      static_cast<std::uint64_t>(graph.num_nodes()) * graph.num_nodes(), 3);
  const auto inst = make_two_delta_instance(g);

  WallTimer bko_timer;
  const auto bko = Solver(Policy::practical()).solve(inst);
  const double bko_ms = bko_timer.ms();

  RoundLedger l1, l2, l3;
  WallTimer greedy_timer;
  const auto greedy = baseline_greedy_by_class(inst, l1);
  const double greedy_ms = greedy_timer.ms();
  WallTimer kw_timer;
  const auto kw = baseline_kuhn_wattenhofer(inst, l2);
  const double kw_ms = kw_timer.ms();
  WallTimer luby_timer;
  const auto luby = baseline_luby(inst, 17, l3);
  const double luby_ms = luby_timer.ms();
  const auto central = greedy_centralized(inst);

  t.row({name, fmt(g.num_edges()), fmt(g.max_edge_degree()),
         fmt(bko.rounds) + " (" + fmt(bko_ms, 0) + "ms)",
         fmt(greedy.rounds) + " (" + fmt(greedy_ms, 0) + "ms)",
         fmt(kw.rounds) + " (" + fmt(kw_ms, 0) + "ms)",
         fmt(luby.rounds) + " (" + fmt(luby_ms, 0) + "ms)",
         fmt(colors_used(bko.colors)) + "/" + fmt(colors_used(kw.colors)) + "/" +
             fmt(colors_used(central))});
}

void print_head_to_head() {
  banner("EXP-BASE: head-to-head on the (2 Delta - 1)-edge coloring problem",
         "all algorithms valid on every family; rounds follow their proven shapes");
  Table t({"family", "m", "Dbar", "BKO", "greedy-by-class", "KW06", "Luby",
           "colors BKO/KW/central"});
  run_family(t, "cycle n=1024", make_cycle(1024));
  run_family(t, "grid 24x24", make_grid(24, 24));
  run_family(t, "hypercube d=9", make_hypercube(9));
  run_family(t, "regular n=384 d=16", make_random_regular(384, 16, 5));
  run_family(t, "gnp n=400 p=.04", make_gnp(400, 0.04, 6));
  run_family(t, "power-law n=500", make_power_law(500, 2.5, 32.0, 7));
  run_family(t, "bipartite 64x64 d=12", make_random_bipartite_regular(64, 64, 12, 8));
  t.print();
}

void print_list_instances() {
  std::printf("(deg+1)-list instances (adversarially small lists):\n\n");
  Table t({"family", "BKO rounds", "greedy-by-class rounds", "Luby rounds"});
  struct Case {
    const char* name;
    Graph g;
  };
  Case cases[] = {
      {"regular n=256 d=12", make_random_regular(256, 12, 9)},
      {"gnp n=300 p=.05", make_gnp(300, 0.05, 10)},
  };
  for (auto& c : cases) {
    const Graph g = c.g.with_scrambled_ids(
        static_cast<std::uint64_t>(c.g.num_nodes()) * c.g.num_nodes(), 4);
    const auto inst =
        make_random_list_instance(g, 2 * g.max_edge_degree() + 2, 11);
    const auto bko = Solver(Policy::practical()).solve(inst);
    RoundLedger l1, l3;
    const auto greedy = baseline_greedy_by_class(inst, l1);
    const auto luby = baseline_luby(inst, 21, l3);
    t.row({c.name, fmt(bko.rounds), fmt(greedy.rounds), fmt(luby.rounds)});
  }
  t.print();
  std::printf("(KW06 is palette-reduction-based and does not apply to list "
              "instances; the paper's algorithm and greedy-by-class do.)\n\n");
}

void bm_greedy_centralized(benchmark::State& state) {
  const auto inst = make_two_delta_instance(
      make_random_regular(512, 16, 3).with_scrambled_ids(512 * 512, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_centralized(inst).size());
  }
}
BENCHMARK(bm_greedy_centralized)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_head_to_head();
  print_list_instances();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
