#include "src/common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace qplec {
namespace {

TEST(FloorLog2, KnownValues) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(floor_log2(std::numeric_limits<std::uint64_t>::max()), 63);
}

TEST(FloorLog2, RejectsZero) { EXPECT_THROW(floor_log2(0), std::invalid_argument); }

TEST(CeilLog2, KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1u << 20), 20);
  EXPECT_EQ(ceil_log2((1u << 20) + 1), 21);
}

TEST(CeilLog2, InverseOfPow) {
  for (int e = 0; e < 40; ++e) {
    EXPECT_EQ(ceil_log2(std::uint64_t{1} << e), e);
  }
}

TEST(LogStar, KnownLadder) {
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(65536), 4);
  EXPECT_EQ(log_star(65537), 5);
  EXPECT_EQ(log_star(std::numeric_limits<std::uint64_t>::max()), 5);
}

TEST(LogStar, MonotoneNondecreasing) {
  int prev = 0;
  for (std::uint64_t x = 1; x < 100000; x += 97) {
    const int cur = log_star(x);
    EXPECT_GE(cur, prev >= 0 ? 0 : prev);
    EXPECT_LE(cur, 5);
  }
}

TEST(LogStarPow, MatchesDirectWhenRepresentable) {
  EXPECT_EQ(log_star_pow(2, 16), log_star(65536));
  EXPECT_EQ(log_star_pow(10, 3), log_star(1000));
  EXPECT_EQ(log_star_pow(7, 0), 0);
  EXPECT_EQ(log_star_pow(1, 100), 0);
}

TEST(LogStarPow, HugeExponentsStaySmall) {
  // log*(2^(2^20)) = 1 + log*(2^20) = 1 + 1 + log*(20) = ...
  EXPECT_LE(log_star_pow(2, 1 << 20), 6);
}

TEST(Harmonic, SmallValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(Harmonic, AsymptoticApproximation) {
  // H_p ~ ln p + gamma.
  EXPECT_NEAR(harmonic(1000000), std::log(1e6) + 0.5772156649, 1e-5);
}

TEST(Harmonic, LargeArgumentContinuity) {
  // The exact/approximate switchover at 2^20 must not jump.
  const double below = harmonic((1u << 20));
  const double above = harmonic((1u << 20) + 1);
  EXPECT_NEAR(above - below, 1.0 / ((1u << 20) + 1), 1e-9);
}

TEST(CeilDiv, Values) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
  EXPECT_EQ(ceil_div(-3, 5), 0);
  EXPECT_THROW(ceil_div(1, 0), std::invalid_argument);
}

TEST(SaturatingPow, Values) {
  EXPECT_EQ(saturating_pow(2, 10), 1024u);
  EXPECT_EQ(saturating_pow(2, 63), std::uint64_t{1} << 63);
  EXPECT_EQ(saturating_pow(2, 64), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(saturating_pow(10, 30), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(saturating_pow(7, 0), 1u);
  EXPECT_EQ(saturating_pow(0, 5), 0u);
}

TEST(SaturatingMul, Values) {
  EXPECT_EQ(saturating_mul(3, 7), 21u);
  EXPECT_EQ(saturating_mul(0, std::numeric_limits<std::uint64_t>::max()), 0u);
  EXPECT_EQ(saturating_mul(std::uint64_t{1} << 32, std::uint64_t{1} << 32),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Isqrt, ExactSquaresAndNeighbors) {
  for (std::uint64_t r = 0; r < 2000; ++r) {
    EXPECT_EQ(isqrt(r * r), r);
    if (r >= 1) {
      EXPECT_EQ(isqrt(r * r + 1), r);
    }
    if (r >= 2) {
      EXPECT_EQ(isqrt(r * r - 1), r - 1);
    }
  }
}

TEST(Isqrt, LargeValues) {
  EXPECT_EQ(isqrt(std::numeric_limits<std::uint64_t>::max()), 0xFFFFFFFFull);
  const std::uint64_t r = 3037000499ull;  // floor(sqrt(2^63))
  EXPECT_EQ(isqrt(r * r), r);
}

TEST(NthRootCeil, Properties) {
  for (std::uint64_t x : {2ull, 10ull, 100ull, 12345ull, 1ull << 40}) {
    for (int r = 1; r <= 8; ++r) {
      const std::uint64_t y = nth_root_ceil(x, r);
      EXPECT_GE(saturating_pow(y, static_cast<unsigned>(r)), x) << x << " " << r;
      if (y > 1) {
        EXPECT_LT(saturating_pow(y - 1, static_cast<unsigned>(r)), x) << x << " " << r;
      }
    }
  }
  EXPECT_EQ(nth_root_ceil(1, 5), 1u);
  EXPECT_EQ(nth_root_ceil(8, 3), 2u);
  EXPECT_EQ(nth_root_ceil(9, 3), 3u);
}

}  // namespace
}  // namespace qplec
