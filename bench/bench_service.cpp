// EXP-SERVICE: the SolveService front door under load.
//
//   usage: bench_service [--nodes N] [--degree D] [--repeats R]
//                        [--sweep-repeats K] [--shards S]
//                        [--out BENCH_service.json] [--max-cancel-rounds X]
//                        [--max-overhead-pct P] [--overload]
//                        [--min-hit-rate R] [--max-queue-p99-ms X]
//                        [--smoke MANIFEST --smoke-out FILE]
//
// Four experiments, reported into BENCH_service.json:
//   * Submission throughput: the small default manifest, K copies, submitted
//     through one service — jobs/sec end to end, plus the mean/max
//     submission->start wait (queue_ms).  Every repeated copy of a scenario
//     must hash identically (the queue must not perturb results).
//   * Cancellation latency: the shared regular stressor (bench/support.hpp
//     sizes) solved once as the reference, then R more times each cancelled
//     mid-flight (at half the reference round count, observed via the
//     progress callback); the bench measures cancel() -> outcome latency.
//     A cancellation attempt after the reference finished must leave its
//     outcome untouched.  "One round's wall time" is measured, not assumed:
//     the reference run records the LONGEST wall gap between two
//     consecutive round checkpoints (the ledger's effective rounds are
//     LOCAL-model charges — thousands land per simulation pass, so the mean
//     charge-round is meaningless as a latency unit; the longest
//     uncancellable stretch is the real bound cancellation can hit).
//   * Metrics overhead: the same stressor solved with ExecConfig::metrics on
//     and off (best-of-R solve_ms each, after a warmup).  The fingerprints
//     must match bit for bit — the telemetry spine is observers only — and
//     --max-overhead-pct P gates the on/off wall-time delta (exit 1 when
//     metrics-on costs more than P percent; CI uses 3).
//   * Sustained overload (--overload): one worker behind a 16-deep queue.
//     Phase 1 warms the result cache with a handful of small scenarios and
//     then streams 150 repeat submissions at it — every repeat must come
//     back as a cache hit, bit-identical to its warm solve (exit 3
//     otherwise), and --min-hit-rate R gates the observed hit rate.
//     Phase 2 floods 150 unique-seed scenarios (every one a cache miss) at
//     the same service, so admission control MUST shed — zero queue_full
//     outcomes means the backpressure path never fired and the leg exits 1.
//     Queue-latency percentiles are computed locally from the per-ticket
//     queue_ms of the ok outcomes (the process-wide histograms are
//     cumulative across experiments, so the leg cannot read them);
//     --max-queue-p99-ms X gates the p99.
// The submission sweep also snapshots the service's queue/solve latency
// histograms (SolveService::metrics_snapshot) and reports p50/p95/p99 into
// BENCH_service.json.
// --max-cancel-rounds X turns the latency experiment into a gate: exit 1
// unless every cancel returned within X times that longest checkpoint gap
// (the acceptance bar is "within one round"; CI allows modest scheduling
// slack on top).
// Any determinism violation — repeated-copy hash drift, a perturbed
// outcome after a late cancel, a cancelled run that claims Ok — exits 3 and
// must never be retried away.
//
// --smoke MANIFEST runs the CI smoke manifest through explicit
// submit/wait/cancel-after-finish tickets and writes a batch_solve-
// compatible report to --smoke-out, so tools/check_golden.py can pin the
// service path against the SAME golden fingerprints as the batch path.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "bench/support.hpp"
#include "src/runtime/reporter.hpp"
#include "src/service/solve_service.hpp"

namespace {

using namespace qplec;

int usage() {
  std::fprintf(stderr,
               "usage: bench_service [--nodes N] [--degree D] [--repeats R] "
               "[--sweep-repeats K] [--shards S] [--out BENCH_service.json] "
               "[--max-cancel-rounds X] [--max-overhead-pct P] [--overload] "
               "[--min-hit-rate R] [--max-queue-p99-ms X] "
               "[--smoke MANIFEST --smoke-out FILE]\n");
  return 2;
}

/// One histogram snapshot as a JSON object fragment (percentiles via
/// HistogramSnapshot::quantile — the registry's cumulative-rank estimate).
std::string histogram_json(const qplec::obs::HistogramSnapshot& h) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"mean\": %.4f, \"p50\": %.4f, "
                "\"p95\": %.4f, \"p99\": %.4f, \"max\": %.4f}",
                static_cast<unsigned long long>(h.count), h.mean(), h.p50(),
                h.p95(), h.p99(), h.max);
  return buf;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Ceil-rank percentile over an unsorted sample (sorts in place).
double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, rank > 0 ? rank - 1 : 0)];
}

/// Everything the sustained-overload leg measures (see the file comment).
struct OverloadStats {
  bool ran = false;
  std::size_t warm = 0;     ///< distinct scenarios pre-solved into the cache
  std::size_t repeats = 0;  ///< phase-1 repeat submissions
  std::size_t hits = 0;     ///< ...of which came back cache_hit
  std::size_t flood = 0;    ///< phase-2 unique-seed submissions
  std::size_t shed = 0;     ///< ...rejected queue_full by admission control
  std::size_t solved = 0;   ///< ...admitted and solved Ok
  double hit_rate = 0.0;
  double queue_p50_ms = 0.0;
  double queue_p99_ms = 0.0;
  double queue_max_ms = 0.0;
};

/// Progress-callback instrument.  Always records the longest wall gap
/// between two consecutive checkpoints — the longest uncancellable stretch,
/// i.e. one round's wall time as a cancellation bound.  With trigger > 0 it
/// additionally PARKS the solving thread inside the checkpoint once that
/// many effective rounds are reached, until release(): the measuring thread
/// gets a provably-mid-flight moment to cancel at, with no race against the
/// solve completing first (and no hang if the solve finishes below the
/// trigger — wait_parked() also wakes on completion).  The gap fields are
/// touched only on the solving thread; read them after the ticket resolved.
class ProgressWatch {
 public:
  /// trigger <= 0: gap recording only, never parks.
  explicit ProgressWatch(std::int64_t trigger) : trigger_(trigger) {}

  std::function<void(const RoundProgress&)> callback() {
    return [this](const RoundProgress& p) {
      const auto now = std::chrono::steady_clock::now();
      if (seen_any_) {
        max_gap_ms_ = std::max(
            max_gap_ms_, std::chrono::duration<double, std::milli>(now - last_).count());
      }
      seen_any_ = true;
      last_ = now;
      if (trigger_ <= 0 || p.rounds < trigger_) return;
      std::unique_lock<std::mutex> lock(mu_);
      parked_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return released_; });
    };
  }

  /// True once the solve parked at the trigger; false if the ticket
  /// resolved first (the solve never reached the trigger — no hang).
  bool wait_parked(const SolveTicket& ticket) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(50), [&] { return parked_; })) {
        return true;
      }
      if (ticket.done()) return parked_;
    }
  }

  void release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

  double max_gap_ms() const { return max_gap_ms_; }

 private:
  std::int64_t trigger_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool parked_ = false;
  bool released_ = false;
  // Solving-thread-only state (no lock: one writer, read after completion).
  bool seen_any_ = false;
  std::chrono::steady_clock::time_point last_{};
  double max_gap_ms_ = 0.0;
};

/// --smoke: the golden-gate manifest through explicit service tickets, with
/// a cancel-after-finish attempt on every scenario (must be a no-op), folded
/// into a batch_solve-compatible report for tools/check_golden.py.
int run_smoke(const std::string& manifest_path, const std::string& out_path) {
  std::ifstream in(manifest_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", manifest_path.c_str());
    return 2;
  }
  const std::vector<Scenario> manifest = parse_manifest(in);

  BatchReport report;
  report.results.resize(manifest.size());
  const auto start = std::chrono::steady_clock::now();
  {
    SolveService service(ExecConfig{.workers = 2});
    report.num_threads = service.workers();
    std::vector<SolveTicket> tickets;
    for (const Scenario& s : manifest) {
      tickets.push_back(service.submit(SolveRequest::from_scenario(s)));
    }
    for (std::size_t i = 0; i < manifest.size(); ++i) {
      // Snapshot the fingerprint BEFORE the cancel attempt (wait() returns a
      // reference into the job, so comparing it to itself would prove
      // nothing).
      const SolveStatus status_before = tickets[i].wait().status;
      const std::uint64_t hash_before = tickets[i].wait().colors_hash;
      tickets[i].cancel();  // after completion: must not perturb anything
      const SolveOutcome& after = tickets[i].wait();
      if (!after.ok() || status_before != SolveStatus::kOk ||
          after.colors_hash != hash_before) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: cancel-after-finish perturbed %s\n",
                     manifest[i].name().c_str());
        return 3;
      }
      ScenarioResult& r = report.results[i];
      r.scenario = manifest[i];
      r.num_nodes = after.num_nodes;
      r.num_edges = after.num_edges;
      r.max_degree = after.max_degree;
      r.max_edge_degree = after.max_edge_degree;
      r.palette_size = after.palette_size;
      r.shards = after.shards;
      r.rounds = after.result.rounds;
      r.raw_rounds = after.result.raw_rounds;
      r.colors_hash = after.colors_hash;
      r.valid = after.ok() && after.valid;
      r.queue_ms = after.queue_ms;
      r.build_ms = after.build_ms;
      r.solve_ms = after.solve_ms;
      r.edges_per_sec =
          r.solve_ms > 0 ? static_cast<double>(r.num_edges) / (r.solve_ms / 1000.0) : 0.0;
      report.total_edges += r.num_edges;
      report.total_solve_ms += r.solve_ms;
    }
  }
  report.wall_ms = ms_since(start);

  BenchReporter reporter;
  reporter.set("bench", "service_smoke").set("algorithm", "bko_podc2020");
  reporter.write_json_file(report, out_path);
  std::printf("[service-smoke] %zu scenarios via submit/wait/cancel tickets -> %s\n",
              report.results.size(), out_path.c_str());
  for (const ScenarioResult& r : report.results) {
    if (!r.valid) {
      std::fprintf(stderr, "INVALID coloring for %s\n", r.scenario.name().c_str());
      return 3;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = bench::kStressRegularNodes;
  int degree = bench::kStressRegularDegree;
  int repeats = 2;
  int sweep_repeats = 3;
  int shards = 1;
  double max_cancel_rounds = 0.0;  // 0: informational only
  double max_overhead_pct = 0.0;   // 0: informational only
  bool run_overload = false;
  double min_hit_rate = 0.0;       // 0: informational only
  double max_queue_p99_ms = 0.0;   // 0: informational only
  std::string out_path = "BENCH_service.json";
  std::string smoke_manifest;
  std::string smoke_out = "BENCH_smoke_service.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nodes" && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (arg == "--degree" && i + 1 < argc) {
      degree = std::atoi(argv[++i]);
    } else if (arg == "--repeats" && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (arg == "--sweep-repeats" && i + 1 < argc) {
      sweep_repeats = std::atoi(argv[++i]);
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (arg == "--max-cancel-rounds" && i + 1 < argc) {
      max_cancel_rounds = std::atof(argv[++i]);
    } else if (arg == "--max-overhead-pct" && i + 1 < argc) {
      max_overhead_pct = std::atof(argv[++i]);
    } else if (arg == "--overload") {
      run_overload = true;
    } else if (arg == "--min-hit-rate" && i + 1 < argc) {
      min_hit_rate = std::atof(argv[++i]);
    } else if (arg == "--max-queue-p99-ms" && i + 1 < argc) {
      max_queue_p99_ms = std::atof(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--smoke" && i + 1 < argc) {
      smoke_manifest = argv[++i];
    } else if (arg == "--smoke-out" && i + 1 < argc) {
      smoke_out = argv[++i];
    } else {
      return usage();
    }
  }
  if (!smoke_manifest.empty()) return run_smoke(smoke_manifest, smoke_out);

  bench::banner("EXP-SERVICE: submission throughput + cancellation latency",
                "submit/wait adds queue bookkeeping only; cancellation lands "
                "within ~one round's wall time");
  bool deterministic = true;

  // --- Submission throughput: K copies of the small manifest. -------------
  const std::vector<Scenario> base = small_default_manifest();
  double enqueue_ms = 0.0, sweep_wall_ms = 0.0, mean_queue_ms = 0.0, max_queue_ms = 0.0;
  std::size_t jobs = 0;
  ServiceMetricsSnapshot sweep_metrics;
  {
    SolveService service(ExecConfig{});  // hardware workers, serial solves
    std::vector<SolveTicket> tickets;
    const auto sweep_start = std::chrono::steady_clock::now();
    for (int k = 0; k < sweep_repeats; ++k) {
      for (const Scenario& s : base) {
        tickets.push_back(
            service.submit(SolveRequest::from_scenario(s).discard_colors()));
      }
    }
    enqueue_ms = ms_since(sweep_start);
    jobs = tickets.size();
    // Repeated copies of one scenario must agree bit for bit: the queue
    // schedules, it never perturbs.
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const SolveOutcome& out = tickets[i].wait();
      const SolveOutcome& first = tickets[i % base.size()].wait();
      if (!out.ok() || out.colors_hash != first.colors_hash ||
          out.result.rounds != first.result.rounds) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: repeated copy of %s drifted\n",
                     base[i % base.size()].name().c_str());
        deterministic = false;
      }
      mean_queue_ms += out.queue_ms;
      max_queue_ms = std::max(max_queue_ms, out.queue_ms);
    }
    sweep_wall_ms = ms_since(sweep_start);
    mean_queue_ms /= static_cast<double>(jobs);
    sweep_metrics = service.metrics_snapshot();
  }
  const double jobs_per_sec =
      sweep_wall_ms > 0 ? static_cast<double>(jobs) / (sweep_wall_ms / 1000.0) : 0.0;
  bench::Table sweep_table({"jobs", "enqueue ms", "wall ms", "jobs/s", "mean queue ms",
                            "max queue ms"});
  sweep_table.row({bench::fmt(static_cast<std::int64_t>(jobs)), bench::fmt(enqueue_ms),
                   bench::fmt(sweep_wall_ms), bench::fmt(jobs_per_sec, 1),
                   bench::fmt(mean_queue_ms, 3), bench::fmt(max_queue_ms, 3)});
  sweep_table.print();

  // --- Cancellation latency on the regular stressor. ----------------------
  const Scenario stressor{GraphFamily::kRegular, nodes, ListFlavor::kTwoDelta,
                          PolicyKind::kPractical, bench::kStressSeed, degree};
  ExecConfig config;
  config.workers = 1;
  config.shards = shards;
  if (shards > 1) config.min_sharded_edges = 0;

  double reference_wall_ms = 0.0;
  double round_wall_ms = 0.0;  // the longest uncancellable stretch observed
  std::int64_t reference_rounds = 0;
  int edges = 0;
  {
    SolveService service(config);
    // Same callback shape as the cancelled runs, so the checkpoint pacing
    // (ledger walks included) is comparable; trigger 0 = never parks.
    ProgressWatch watch(0);
    const auto t0 = std::chrono::steady_clock::now();
    const SolveTicket ticket = service.submit(SolveRequest::from_scenario(stressor)
                                                  .discard_colors()
                                                  .on_round(watch.callback()));
    const SolveOutcome& out = ticket.wait();
    reference_wall_ms = ms_since(t0);
    if (!out.ok()) {
      std::fprintf(stderr, "reference stressor solve failed: %s\n", out.error.c_str());
      return 3;
    }
    reference_rounds = out.result.rounds;
    edges = out.num_edges;
    round_wall_ms = watch.max_gap_ms();
    const std::uint64_t hash_before = out.colors_hash;
    ticket.cancel();  // after completion: must be a no-op
    if (!ticket.wait().ok() || ticket.wait().colors_hash != hash_before) {
      std::fprintf(stderr, "DETERMINISM VIOLATION: cancel-after-finish perturbed outcome\n");
      deterministic = false;
    }
  }

  double max_latency_ms = 0.0;
  for (int r = 0; r < repeats; ++r) {
    SolveService service(config);
    ProgressWatch watch(std::max<std::int64_t>(1, reference_rounds / 2));
    const SolveTicket ticket = service.submit(SolveRequest::from_scenario(stressor)
                                                  .discard_colors()
                                                  .on_round(watch.callback()));
    if (!watch.wait_parked(ticket)) {
      // The solve finished below the trigger (tiny --nodes): nothing to
      // cancel mid-flight; report rather than hang or cry wolf.
      std::fprintf(stderr, "cancel repeat %d: solve finished before the trigger; skipped\n",
                   r);
      continue;
    }
    // The solve is parked inside a checkpoint — provably mid-flight, no
    // race against completion.  Latency measured here is the cancellation
    // delivery + unwind path; the in-flight stretch a real async cancel
    // additionally waits out is bounded by round_wall_ms by construction.
    const auto cancel_at = std::chrono::steady_clock::now();
    ticket.cancel();
    watch.release();
    const SolveOutcome& out = ticket.wait();
    const double latency = ms_since(cancel_at);
    max_latency_ms = std::max(max_latency_ms, latency);
    if (out.status != SolveStatus::kCancelled) {
      std::fprintf(stderr, "DETERMINISM VIOLATION: mid-flight cancel produced %s\n",
                   status_name(out.status));
      deterministic = false;
    }
    std::printf("cancel repeat %d: latency %.3f ms (%.2f x the longest round stretch)\n", r,
                latency, round_wall_ms > 0 ? latency / round_wall_ms : 0.0);
  }

  // --- Metrics overhead: the stressor with ExecConfig::metrics on vs off. --
  // Observers only: fingerprints must match bit for bit (exit 3 otherwise);
  // the wall-time delta is the cost of armed counters/histograms.
  const int overhead_repeats = std::max(2, repeats);
  std::uint64_t on_hash = 0, off_hash = 0;
  std::int64_t on_rounds = 0, off_rounds = 0;
  double on_best_ms = 0.0, off_best_ms = 0.0;
  bool overhead_ok = true;
  const auto overhead_leg = [&](bool metrics_on, std::uint64_t* hash,
                                std::int64_t* rounds_out) {
    ExecConfig oc = config;
    oc.metrics = metrics_on;
    double best = 0.0;
    for (int r = 0; r <= overhead_repeats; ++r) {  // r == 0 is the warmup
      SolveService service(oc);
      const SolveOutcome out =
          service.solve(SolveRequest::from_scenario(stressor).discard_colors());
      if (!out.ok()) {
        std::fprintf(stderr, "overhead leg solve failed: %s\n", out.error.c_str());
        overhead_ok = false;
        return 0.0;
      }
      *hash = out.colors_hash;
      *rounds_out = out.result.rounds;
      if (r > 0 && (best == 0.0 || out.solve_ms < best)) best = out.solve_ms;
    }
    return best;
  };
  on_best_ms = overhead_leg(true, &on_hash, &on_rounds);
  off_best_ms = overhead_leg(false, &off_hash, &off_rounds);
  if (overhead_ok && (on_hash != off_hash || on_rounds != off_rounds)) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: metrics-on fingerprint (%llx, %lld) != "
                 "metrics-off (%llx, %lld)\n",
                 static_cast<unsigned long long>(on_hash),
                 static_cast<long long>(on_rounds),
                 static_cast<unsigned long long>(off_hash),
                 static_cast<long long>(off_rounds));
    deterministic = false;
  }
  const double overhead_pct =
      off_best_ms > 0 ? (on_best_ms - off_best_ms) / off_best_ms * 100.0 : 0.0;
  bench::Table overhead_table(
      {"metrics on ms", "metrics off ms", "overhead %", "fingerprints"});
  overhead_table.row({bench::fmt(on_best_ms, 3), bench::fmt(off_best_ms, 3),
                      bench::fmt(overhead_pct, 2),
                      on_hash == off_hash && on_rounds == off_rounds ? "match"
                                                                    : "DIVERGED"});
  overhead_table.print();

  // --- Sustained overload: cache serving + admission shedding. ------------
  OverloadStats overload;
  if (run_overload) {
    overload.ran = true;
    // One worker behind a shallow queue: the repeat stream must be absorbed
    // by the result cache, the unique-seed flood must trip the queue_full
    // backstop.  Both phases run against the SAME service instance.
    ExecConfig oc;
    oc.workers = 1;
    oc.max_queue_depth = 16;
    SolveService service(oc);

    std::vector<Scenario> warm_set = small_default_manifest();
    if (warm_set.size() > 6) warm_set.resize(6);
    std::vector<std::uint64_t> warm_hashes;
    for (const Scenario& s : warm_set) {
      const SolveOutcome out =
          service.solve(SolveRequest::from_scenario(s).discard_colors());
      if (!out.ok()) {
        std::fprintf(stderr, "overload warm solve failed for %s: %s\n",
                     s.name().c_str(), out.error.c_str());
        return 1;
      }
      warm_hashes.push_back(out.colors_hash);
    }
    overload.warm = warm_set.size();

    // Phase 1: 150 repeat submissions round-robin over the warm set.  Every
    // one should be served verbatim from the cache.
    std::vector<double> ok_queue_ms;
    constexpr int kRepeats = 150;
    std::vector<SolveTicket> tickets;
    tickets.reserve(kRepeats);
    for (int i = 0; i < kRepeats; ++i) {
      tickets.push_back(service.submit(
          SolveRequest::from_scenario(warm_set[i % warm_set.size()]).discard_colors()));
    }
    for (int i = 0; i < kRepeats; ++i) {
      const SolveOutcome& out = tickets[i].wait();
      if (!out.ok()) continue;
      ok_queue_ms.push_back(out.queue_ms);
      if (out.cache_hit) ++overload.hits;
      if (out.colors_hash != warm_hashes[i % warm_set.size()]) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: cached repeat of %s drifted from "
                     "its warm solve\n",
                     warm_set[i % warm_set.size()].name().c_str());
        deterministic = false;
      }
    }
    overload.repeats = kRepeats;
    overload.hit_rate =
        static_cast<double>(overload.hits) / static_cast<double>(kRepeats);

    // Phase 2: 150 unique-seed floods — every fingerprint fresh, so every
    // submit heads for the one-worker queue and admission control must shed
    // once the backlog hits max_queue_depth.
    tickets.clear();
    constexpr int kFlood = 150;
    tickets.reserve(kFlood);
    const Scenario flood_base = warm_set.front();
    for (int i = 0; i < kFlood; ++i) {
      Scenario s = flood_base;
      s.seed = 1000000 + static_cast<std::uint64_t>(i);
      tickets.push_back(
          service.submit(SolveRequest::from_scenario(s).discard_colors()));
    }
    for (SolveTicket& t : tickets) {
      const SolveOutcome& out = t.wait();
      if (out.status == SolveStatus::kQueueFull) {
        ++overload.shed;
      } else if (out.ok()) {
        ++overload.solved;
        ok_queue_ms.push_back(out.queue_ms);
      }
    }
    overload.flood = kFlood;
    overload.queue_p50_ms = percentile(ok_queue_ms, 0.50);
    overload.queue_p99_ms = percentile(ok_queue_ms, 0.99);
    overload.queue_max_ms = ok_queue_ms.empty() ? 0.0 : ok_queue_ms.back();

    bench::Table overload_table({"warm", "repeats", "hits", "hit rate", "flood",
                                 "shed", "solved", "queue p50 ms", "queue p99 ms"});
    overload_table.row(
        {bench::fmt(static_cast<std::int64_t>(overload.warm)),
         bench::fmt(static_cast<std::int64_t>(overload.repeats)),
         bench::fmt(static_cast<std::int64_t>(overload.hits)),
         bench::fmt(overload.hit_rate, 3),
         bench::fmt(static_cast<std::int64_t>(overload.flood)),
         bench::fmt(static_cast<std::int64_t>(overload.shed)),
         bench::fmt(static_cast<std::int64_t>(overload.solved)),
         bench::fmt(overload.queue_p50_ms, 3), bench::fmt(overload.queue_p99_ms, 3)});
    overload_table.print();
  }

  bench::Table cancel_table({"graph", "edges", "ref wall ms", "ref rounds",
                             "round wall ms", "max cancel ms", "in rounds"});
  cancel_table.row({"regular-" + std::to_string(nodes) + "x" + std::to_string(degree),
                    bench::fmt(edges), bench::fmt(reference_wall_ms),
                    bench::fmt(reference_rounds), bench::fmt(round_wall_ms, 3),
                    bench::fmt(max_latency_ms, 3),
                    bench::fmt(round_wall_ms > 0 ? max_latency_ms / round_wall_ms : 0.0)});
  cancel_table.print();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"service\",\n";
  out << "  \"submission\": {\"jobs\": " << jobs << ", \"enqueue_ms\": " << enqueue_ms
      << ", \"wall_ms\": " << sweep_wall_ms << ", \"jobs_per_sec\": " << jobs_per_sec
      << ",\n    \"mean_queue_ms\": " << mean_queue_ms
      << ", \"max_queue_ms\": " << max_queue_ms << "},\n";
  out << "  \"cancellation\": {\"graph\": \"regular-" << nodes << "x" << degree
      << "\", \"edges\": " << edges << ", \"shards\": " << shards
      << ",\n    \"reference_wall_ms\": " << reference_wall_ms
      << ", \"reference_rounds\": " << reference_rounds
      << ", \"round_wall_ms\": " << round_wall_ms << ",\n    \"repeats\": " << repeats
      << ", \"max_cancel_latency_ms\": " << max_latency_ms << ", \"latency_rounds\": "
      << (round_wall_ms > 0 ? max_latency_ms / round_wall_ms : 0.0) << "},\n";
  out << "  \"latency\": {\"queue_ms\": " << histogram_json(sweep_metrics.queue_latency_ms)
      << ",\n    \"solve_ms\": " << histogram_json(sweep_metrics.solve_latency_ms) << "},\n";
  if (overload.ran) {
    out << "  \"overload\": {\"ran\": true, \"warm\": " << overload.warm
        << ", \"repeats\": " << overload.repeats << ", \"cache_hits\": " << overload.hits
        << ", \"hit_rate\": " << overload.hit_rate << ",\n    \"flood\": " << overload.flood
        << ", \"shed\": " << overload.shed << ", \"solved\": " << overload.solved
        << ",\n    \"queue_p50_ms\": " << overload.queue_p50_ms
        << ", \"queue_p99_ms\": " << overload.queue_p99_ms
        << ", \"queue_max_ms\": " << overload.queue_max_ms << "},\n";
  } else {
    out << "  \"overload\": {\"ran\": false},\n";
  }
  out << "  \"metrics_overhead\": {\"repeats\": " << overhead_repeats
      << ", \"on_best_ms\": " << on_best_ms << ", \"off_best_ms\": " << off_best_ms
      << ",\n    \"overhead_pct\": " << overhead_pct << ", \"fingerprints_match\": "
      << (on_hash == off_hash && on_rounds == off_rounds ? "true" : "false") << "},\n";
  out << "  \"deterministic\": " << (deterministic ? "true" : "false") << "\n}\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!deterministic) return 3;
  if (!overhead_ok) return 1;
  if (max_overhead_pct > 0 && overhead_pct > max_overhead_pct) {
    std::fprintf(stderr, "METRICS OVERHEAD GATE MISSED: %.2f%% > %.2f%%\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  if (max_cancel_rounds > 0 && round_wall_ms > 0 &&
      max_latency_ms > max_cancel_rounds * round_wall_ms) {
    std::fprintf(stderr,
                 "CANCELLATION GATE MISSED: %.3f ms latency > %.1f rounds x %.3f ms\n",
                 max_latency_ms, max_cancel_rounds, round_wall_ms);
    return 1;
  }
  if (overload.ran) {
    if (overload.shed == 0) {
      std::fprintf(stderr,
                   "OVERLOAD GATE MISSED: the unique-seed flood shed nothing "
                   "(admission control never fired)\n");
      return 1;
    }
    if (min_hit_rate > 0 && overload.hit_rate < min_hit_rate) {
      std::fprintf(stderr, "OVERLOAD GATE MISSED: hit rate %.3f < %.3f\n",
                   overload.hit_rate, min_hit_rate);
      return 1;
    }
    if (max_queue_p99_ms > 0 && overload.queue_p99_ms > max_queue_p99_ms) {
      std::fprintf(stderr, "OVERLOAD GATE MISSED: queue p99 %.3f ms > %.3f ms\n",
                   overload.queue_p99_ms, max_queue_p99_ms);
      return 1;
    }
  }
  return 0;
}
