#include "src/core/recurrence.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"

namespace qplec {

LogVal LogVal::from_value(double v) {
  QPLEC_REQUIRE(v > 0);
  return LogVal{std::log2(v)};
}

LogVal LogVal::operator+(LogVal other) const {
  // log2(2^a + 2^b) = max + log2(1 + 2^(min-max)).
  const double hi = std::max(l2, other.l2);
  const double lo = std::min(l2, other.l2);
  return LogVal{hi + std::log1p(std::exp2(lo - hi)) / std::log(2.0)};
}

namespace {

LogVal t1(double log2d, const BkoConstants& k);

// Lemma 4.5 with Theorem 4.1's parameters: p = sqrt(dbar), k = 2c:
//   T(dbar, S, C) <= (k log p) * (1 + T(2p-1, 1, 2p)) + O(log* X).
LogVal ts(double log2d, const BkoConstants& k) {
  const double log2p = std::max(1.0, log2d / 2.0);
  // T(2p-1, 1, 2p): degree ~ 2*sqrt(dbar).
  const LogVal inner = t1(log2p + 1.0, k);
  const LogVal phase_cost = LogVal::from_value(1.0) + inner;
  return LogVal::from_value(2.0 * k.c * log2p) * phase_cost +
         LogVal::from_value(k.log_star);
}

// Lemma 4.2 unrolled: O(log dbar) iterations, each paying one defective
// coloring (O(log* X)) plus classes * (1 + T(dbar/2beta, beta, C)).
LogVal t1(double log2d, const BkoConstants& k) {
  if (log2d <= k.base_log2d) return LogVal::from_value(k.base_rounds);
  const double beta = std::max(2.0, k.alpha * std::pow(log2d, 4.0 * k.c));
  const double classes = k.class_factor * beta * beta;
  const LogVal per_class = LogVal::from_value(1.0) + ts(log2d, k);
  const LogVal per_iter =
      LogVal::from_value(k.log_star) + LogVal::from_value(classes) * per_class;
  return LogVal::from_value(std::max(1.0, log2d)) * per_iter;
}

}  // namespace

double bko_log2_rounds(double log2_dbar, const BkoConstants& k) {
  QPLEC_REQUIRE(log2_dbar >= 1.0);
  return t1(log2_dbar, k).l2;
}

double kuh20_log2_rounds(double log2_dbar, double kappa) {
  return kappa * std::sqrt(log2_dbar);
}

double fhk_log2_rounds(double log2_dbar) {
  return log2_dbar / 2.0 + 2.5 * std::log2(std::max(2.0, log2_dbar));
}

double linear_log2_rounds(double log2_dbar, double c) {
  return log2_dbar + std::log2(c);
}

double kw_log2_rounds(double log2_dbar) {
  return 1.0 + log2_dbar + std::log2(log2_dbar + 2.0);
}

double quadratic_log2_rounds(double log2_dbar) { return 2.0 + 2.0 * log2_dbar; }

}  // namespace qplec
