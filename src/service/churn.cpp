#include "src/service/churn.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/common/rng.hpp"
#include "src/service/result_cache.hpp"

namespace qplec {

void validate_churn(const ListEdgeColoringInstance& base, const ChurnBatch& batch) {
  validate_deltas(base.graph, batch.ops);
}

std::uint64_t chain_fingerprint(std::uint64_t base_fingerprint, const ChurnBatch& batch) {
  Fnv1a fp;
  fp.mix(base_fingerprint);
  fp.mix(static_cast<std::uint64_t>(batch.ops.size()));
  for (const EdgeDelta& op : batch.ops) {
    fp.mix(op.insert);
    fp.mix(op.u);
    fp.mix(op.v);
  }
  return fp.h;
}

ChurnBatch parse_churn_stream(std::istream& in) {
  ChurnBatch batch;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string op;
    if (!(fields >> op)) continue;  // blank / comment-only line
    if (op != "i" && op != "r") {
      throw std::invalid_argument("churn file line " + std::to_string(lineno) +
                                  ": op must be 'i' or 'r', got '" + op + "'");
    }
    NodeId u = 0;
    NodeId v = 0;
    if (!(fields >> u >> v)) {
      throw std::invalid_argument("churn file line " + std::to_string(lineno) +
                                  ": expected two endpoints after '" + op + "'");
    }
    std::string trailing;
    if (fields >> trailing) {
      throw std::invalid_argument("churn file line " + std::to_string(lineno) +
                                  ": trailing token '" + trailing + "'");
    }
    batch.ops.push_back(EdgeDelta{op == "i", u, v});
  }
  return batch;
}

ChurnBatch parse_churn_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open churn file: " + path);
  return parse_churn_stream(in);
}

ChurnBatch make_random_churn(const Graph& g, int inserts, int removes, std::uint64_t seed) {
  if (removes > g.num_edges()) {
    throw std::invalid_argument("make_random_churn: graph has " + std::to_string(g.num_edges()) +
                                " edges, cannot remove " + std::to_string(removes));
  }
  Rng rng(seed);
  ChurnBatch batch;
  std::set<std::pair<NodeId, NodeId>> used;

  std::vector<EdgeId> removal_pool(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) removal_pool[static_cast<std::size_t>(e)] = e;
  rng.shuffle(removal_pool);
  for (int i = 0; i < removes; ++i) {
    const EdgeEndpoints& ep = g.endpoints(removal_pool[static_cast<std::size_t>(i)]);
    used.emplace(ep.u, ep.v);
    batch.remove(ep.u, ep.v);
  }

  // Absent pairs by rejection sampling; bounded so a near-complete graph
  // fails loudly instead of spinning.
  const std::int64_t max_draws =
      1024 + 64 * static_cast<std::int64_t>(inserts > 0 ? inserts : 1);
  std::int64_t draws = 0;
  int found = 0;
  while (found < inserts) {
    if (++draws > max_draws) {
      throw std::invalid_argument("make_random_churn: could not find " +
                                  std::to_string(inserts) + " absent pairs (graph too dense?)");
    }
    const auto u = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
    const auto v = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
    if (u == v) continue;
    const std::pair<NodeId, NodeId> pair = u < v ? std::make_pair(u, v) : std::make_pair(v, u);
    if (used.count(pair) != 0) continue;
    if (g.find_edge(pair.first, pair.second) != kInvalidEdge) continue;
    used.insert(pair);
    batch.insert(pair.first, pair.second);
    ++found;
  }
  return batch;
}

std::size_t estimate_snapshot_bytes(const ChurnSnapshot& snapshot) {
  std::size_t bytes = sizeof(ChurnSnapshot);
  const Graph& g = snapshot.instance.graph;
  bytes += static_cast<std::size_t>(g.num_edges()) *
           (sizeof(EdgeEndpoints) + 2 * sizeof(Incidence));
  bytes += static_cast<std::size_t>(g.num_nodes() + 1) *
           (sizeof(std::size_t) + sizeof(std::uint64_t));
  for (const ColorList& list : snapshot.instance.lists) {
    bytes += sizeof(ColorList) + static_cast<std::size_t>(list.size()) * sizeof(Color);
  }
  bytes += snapshot.colors.size() * sizeof(Color);
  bytes += snapshot.policy.name.size();
  return bytes;
}

}  // namespace qplec
