// Colors, color lists and palette partitions.
//
// Colors are dense integers in [0, C).  A ColorList is a sorted set of
// colors — the list L_e of the list edge coloring problem.  The paper's
// color-space reduction (Lemma 4.3) partitions the palette {0..C-1} into
// q <= 2p contiguous subspaces of size at most ceil(C/p); PalettePartition
// implements exactly that partition, and ColorList supports the O(log)
// range-intersection queries the level computation (Lemma 4.4) needs.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/assert.hpp"

namespace qplec {

using Color = std::int32_t;

inline constexpr Color kUncolored = -1;

/// Sorted set of colors.
class ColorList {
 public:
  ColorList() = default;

  /// Takes ownership of a vector that must be strictly increasing.
  explicit ColorList(std::vector<Color> sorted_unique);

  /// The contiguous list {lo, lo+1, ..., hi-1}.
  static ColorList range(Color lo, Color hi);

  int size() const { return static_cast<int>(colors_.size()); }
  bool empty() const { return colors_.empty(); }

  bool contains(Color c) const;

  /// Removes c if present; returns whether it was present.
  bool remove(Color c);

  /// Smallest color (list must be non-empty).
  Color min() const {
    QPLEC_REQUIRE(!colors_.empty());
    return colors_.front();
  }

  /// Smallest color not in `forbidden` (a sorted vector); kUncolored if none.
  Color min_excluding(const std::vector<Color>& forbidden_sorted) const;

  /// Number of colors in [lo, hi).
  int count_in_range(Color lo, Color hi) const;

  /// New list with only the colors in [lo, hi).
  ColorList restricted_to_range(Color lo, Color hi) const;

  const std::vector<Color>& colors() const { return colors_; }

  friend bool operator==(const ColorList&, const ColorList&) = default;

 private:
  std::vector<Color> colors_;
};

/// Partition of the palette [0, C) into q contiguous parts of size at most
/// ceil(C/p); q <= p <= 2p, matching Lemma 4.3's requirements.
class PalettePartition {
 public:
  /// Uniform partition driven by the parameter p in [1, C].
  static PalettePartition uniform(Color C, int p);

  int num_parts() const { return static_cast<int>(starts_.size()) - 1; }

  Color part_begin(int i) const {
    check(i);
    return starts_[static_cast<std::size_t>(i)];
  }
  Color part_end(int i) const {
    check(i);
    return starts_[static_cast<std::size_t>(i) + 1];
  }
  int part_size(int i) const { return part_end(i) - part_begin(i); }

  /// Largest part size (== ceil(C/p) except possibly the last part).
  int max_part_size() const;

  Color palette_size() const { return starts_.back(); }

  /// Index of the part containing color c.
  int part_of(Color c) const;

 private:
  void check(int i) const {
    QPLEC_REQUIRE_MSG(i >= 0 && i < num_parts(), "part index " << i << " out of range");
  }
  std::vector<Color> starts_;  // q+1 boundaries: 0 = starts_[0] < ... < starts_[q] = C
};

}  // namespace qplec
