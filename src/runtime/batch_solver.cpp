#include "src/runtime/batch_solver.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "src/coloring/validate.hpp"
#include "src/runtime/thread_pool.hpp"

namespace qplec {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Per-worker scratch: one Solver per policy kind, constructed once and
/// reused for every scenario the worker (or a thief hand-off) executes.
/// Every solver carries the batch's ExecOptions; each decides per instance
/// (by edge count) whether to spin up the sharded backend.
struct WorkerScratch {
  explicit WorkerScratch(const ExecOptions& exec)
      : practical(make_policy(PolicyKind::kPractical), exec),
        paper(make_policy(PolicyKind::kPaper), exec) {}

  Solver practical;
  Solver paper;

  const Solver& solver_for(PolicyKind kind) const {
    return kind == PolicyKind::kPaper ? paper : practical;
  }
};

}  // namespace

std::uint64_t hash_coloring(const EdgeColoring& colors) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const Color c : colors) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(c));
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

BatchSolver::BatchSolver(BatchOptions options) : options_(options) {}

int BatchSolver::num_threads() const {
  if (options_.num_threads > 0) return options_.num_threads;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

BatchReport BatchSolver::run(const std::vector<Scenario>& manifest) const {
  // One shard-worker pool for the whole batch, leased to every sharded
  // solve: sized once (like a standalone ShardedExecution would size
  // itself), spawned once, and shared — concurrent sharded solves serialize
  // their round fan-outs on it instead of oversubscribing the machine with
  // per-instance pools.  Declared before the scenario pool so it outlives
  // every worker that might hold the lease.
  ExecOptions exec = options_.exec;
  std::unique_ptr<ThreadPool> shard_pool;
  if (exec.shards > 1 && exec.shared_pool == nullptr) {
    shard_pool = std::make_unique<ThreadPool>(exec.pool_threads());
    exec.shared_pool = shard_pool.get();
  }

  ThreadPool pool(options_.num_threads);

  BatchReport report;
  report.num_threads = pool.num_threads();
  report.results.resize(manifest.size());

  std::vector<WorkerScratch> scratch(static_cast<std::size_t>(pool.num_threads()),
                                     WorkerScratch(exec));

  const auto batch_start = std::chrono::steady_clock::now();
  pool.run_indexed(static_cast<int>(manifest.size()), [&](int worker_id, int index) {
    const Scenario& scenario = manifest[static_cast<std::size_t>(index)];
    ScenarioResult& out = report.results[static_cast<std::size_t>(index)];
    out.scenario = scenario;

    const auto build_start = std::chrono::steady_clock::now();
    const ListEdgeColoringInstance instance = build_instance(scenario);
    out.build_ms = ms_since(build_start);
    out.num_nodes = instance.graph.num_nodes();
    out.num_edges = instance.graph.num_edges();
    out.max_degree = instance.graph.max_degree();
    out.max_edge_degree = instance.graph.max_edge_degree();
    out.palette_size = instance.palette_size;
    out.shards = options_.exec.effective_shards(out.num_edges);

    const Solver& solver =
        scratch[static_cast<std::size_t>(worker_id)].solver_for(scenario.policy);
    const auto solve_start = std::chrono::steady_clock::now();
    const SolveResult res = solver.solve(instance);
    out.solve_ms = ms_since(solve_start);

    out.rounds = res.rounds;
    out.raw_rounds = res.raw_rounds;
    out.colors_hash = hash_coloring(res.colors);
    out.valid = is_valid_list_coloring(instance, res.colors);
    out.edges_per_sec = out.solve_ms > 0
                            ? static_cast<double>(out.num_edges) / (out.solve_ms / 1000.0)
                            : 0.0;
    if (options_.keep_colors) out.colors = res.colors;
  });
  report.wall_ms = ms_since(batch_start);

  for (const ScenarioResult& r : report.results) {
    report.total_edges += r.num_edges;
    report.total_solve_ms += r.solve_ms;
  }
  return report;
}

}  // namespace qplec
