// Parameter policies for the Balliu–Kuhn–Olivetti solver.
//
// The paper's asymptotic parameter choices (Theorem 4.1) are
//     beta = alpha * log^{4c} Delta-bar      (Lemma 4.2 slack target)
//     p    = sqrt(Delta-bar)                 (Lemma 4.3/4.5 split factor)
// with "a large enough constant alpha".  These only bite for astronomically
// large Delta (see DESIGN.md §2): one color-space reduction step consumes a
// slack factor of 24*H_{2p}*log2(p) >= 50, so beta below 50 can never afford
// a reduction step at all.  The policy object makes the choices explicit:
//
//   * Policy::practical()  — beta fixed at 50 (the smallest value that
//     enables space reduction with p = 2), p chosen as the largest value the
//     available slack can pay for.  Every code path of the paper is
//     exercised at simulatable Delta.
//   * Policy::paper(alpha, c) — the exact formulas, for validation runs on
//     small graphs and for the analytic recurrence evaluator.
//
// Both policies drive 100% identical algorithm code.
#pragma once

#include <string>

#include "src/coloring/palette.hpp"

namespace qplec {

struct Policy {
  std::string name = "practical";

  /// Subgraphs whose induced line-graph degree is at most this are solved by
  /// the O(d^2 + log* X) base case ("Delta-bar = O(1)" in the paper).
  int base_degree_threshold = 16;

  /// If > 0, beta is this constant; if 0, beta = alpha * (log2 dbar)^{4c}.
  int beta_fixed = 50;
  double beta_alpha = 1.0;
  int c_exponent = 1;

  /// Upper clamp on beta (keeps the paper formula simulatable).
  int beta_cap = 1 << 16;

  /// If true, prefer p = sqrt(dbar) (the theorem's choice), reduced to the
  /// largest slack-feasible value; if false, use the largest feasible p.
  bool paper_p = false;

  /// Hard recursion guard; the recursion provably terminates much earlier.
  int max_depth = 64;

  /// Lemma 4.2's beta for a subgraph of max line-graph degree dbar.
  int beta(int dbar) const;

  /// Slack factor consumed by one space-reduction step with parameter p
  /// (Lemma 4.3: 24 * H_{2p} * log2 p).
  static double space_cost(int p);

  /// Largest p in [2, min(palette, dbar-cap)] whose cost fits within `slack`
  /// (respecting paper_p); 0 if no p is affordable.
  int choose_p(double slack, Color palette_range, int dbar) const;

  static Policy practical();
  static Policy paper(double alpha = 1.0, int c = 1);
};

}  // namespace qplec
