#include "src/graph/generators.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <vector>

namespace qplec {
namespace {

/// Union-find connectivity check.
bool connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  std::vector<int> parent(static_cast<std::size_t>(g.num_nodes()));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ep = g.endpoints(e);
    parent[static_cast<std::size_t>(find(ep.u))] = find(ep.v);
  }
  const int root = find(0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (find(v) != root) return false;
  }
  return true;
}

TEST(Generators, Path) {
  const Graph g = make_path(10);
  EXPECT_EQ(g.num_nodes(), 10);
  EXPECT_EQ(g.num_edges(), 9);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(9), 1);
  EXPECT_TRUE(connected(g));
  EXPECT_EQ(make_path(1).num_edges(), 0);
}

TEST(Generators, Cycle) {
  const Graph g = make_cycle(7);
  EXPECT_EQ(g.num_edges(), 7);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(connected(g));
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Generators, Star) {
  const Graph g = make_star(12);
  EXPECT_EQ(g.num_nodes(), 13);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(g.degree(0), 12);
  EXPECT_EQ(g.max_edge_degree(), 11);
}

TEST(Generators, Complete) {
  const Graph g = make_complete(9);
  EXPECT_EQ(g.num_edges(), 36);
  for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(g.degree(v), 8);
  EXPECT_EQ(g.max_edge_degree(), 14);  // 2*8 - 2
}

TEST(Generators, CompleteBipartite) {
  const Graph g = make_complete_bipartite(3, 5);
  EXPECT_EQ(g.num_nodes(), 8);
  EXPECT_EQ(g.num_edges(), 15);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 5);
  for (NodeId v = 3; v < 8; ++v) EXPECT_EQ(g.degree(v), 3);
}

TEST(Generators, Grid) {
  const Graph g = make_grid(4, 6);
  EXPECT_EQ(g.num_nodes(), 24);
  EXPECT_EQ(g.num_edges(), 4 * 5 + 6 * 3);  // rows*(cols-1) + cols*(rows-1)
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_TRUE(connected(g));
}

TEST(Generators, Torus) {
  const Graph g = make_torus(4, 5);
  EXPECT_EQ(g.num_nodes(), 20);
  EXPECT_EQ(g.num_edges(), 40);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_TRUE(connected(g));
}

TEST(Generators, Hypercube) {
  const Graph g = make_hypercube(5);
  EXPECT_EQ(g.num_nodes(), 32);
  EXPECT_EQ(g.num_edges(), 5 * 16);
  for (NodeId v = 0; v < 32; ++v) EXPECT_EQ(g.degree(v), 5);
  EXPECT_TRUE(connected(g));
  EXPECT_EQ(make_hypercube(0).num_nodes(), 1);
}

TEST(Generators, RandomTree) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph g = make_random_tree(40, seed);
    EXPECT_EQ(g.num_nodes(), 40);
    EXPECT_EQ(g.num_edges(), 39);
    EXPECT_TRUE(connected(g));
  }
  EXPECT_EQ(make_random_tree(2, 9).num_edges(), 1);
  EXPECT_EQ(make_random_tree(1, 9).num_edges(), 0);
}

TEST(Generators, GnpEdgeCountPlausible) {
  const int n = 100;
  const double p = 0.1;
  const Graph g = make_gnp(n, p, 13);
  const double expected = p * n * (n - 1) / 2;
  EXPECT_GT(g.num_edges(), expected * 0.7);
  EXPECT_LT(g.num_edges(), expected * 1.3);
}

TEST(Generators, GnpExtremes) {
  EXPECT_EQ(make_gnp(20, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(make_gnp(20, 1.0, 1).num_edges(), 190);
}

TEST(Generators, GnpDensePathMatchesSparsePathStatistically) {
  // Both code paths (geometric skipping vs direct) should give similar counts.
  const Graph sparse = make_gnp(200, 0.2, 55);   // sparse path
  const Graph dense = make_gnp(200, 0.3, 55);    // dense path
  EXPECT_GT(dense.num_edges(), sparse.num_edges());
}

TEST(Generators, RandomRegularExactDegrees) {
  for (const auto& [n, d] : std::vector<std::pair<int, int>>{
           {10, 3}, {64, 8}, {40, 13}, {30, 29}, {100, 2}, {16, 15}}) {
    const Graph g = make_random_regular(n, d, 77);
    ASSERT_EQ(g.num_nodes(), n) << n << " " << d;
    ASSERT_EQ(g.num_edges(), n * d / 2);
    for (NodeId v = 0; v < n; ++v) ASSERT_EQ(g.degree(v), d) << n << " " << d;
  }
}

TEST(Generators, RandomRegularRandomizes) {
  // Different seeds should give different graphs (statistically certain).
  const Graph a = make_random_regular(50, 4, 1);
  const Graph b = make_random_regular(50, 4, 2);
  bool differ = a.num_edges() != b.num_edges();
  for (EdgeId e = 0; !differ && e < a.num_edges(); ++e) {
    differ = !(a.endpoints(e) == b.endpoints(e));
  }
  EXPECT_TRUE(differ);
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  EXPECT_THROW(make_random_regular(5, 3, 1), std::invalid_argument);
}

TEST(Generators, PowerLawDegreesBoundedAndSkewed) {
  const Graph g = make_power_law(300, 2.5, 30.0, 21);
  EXPECT_EQ(g.num_nodes(), 300);
  EXPECT_GT(g.num_edges(), 0);
  // Max degree concentrated near the largest-weight nodes.
  int max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) max_deg = std::max(max_deg, g.degree(v));
  EXPECT_LE(max_deg, 90);  // ~3x the expected max; loose sanity bound
}

TEST(Generators, RandomBipartiteRegular) {
  const Graph g = make_random_bipartite_regular(10, 20, 6, 3);
  EXPECT_EQ(g.num_nodes(), 30);
  EXPECT_EQ(g.num_edges(), 60);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 6);
  // Right side: total degree 60 spread over 20 nodes.
  int right_total = 0;
  for (NodeId v = 10; v < 30; ++v) right_total += g.degree(v);
  EXPECT_EQ(right_total, 60);
}

TEST(Generators, DeterministicBySeed) {
  const Graph a = make_gnp(60, 0.15, 42);
  const Graph b = make_gnp(60, 0.15, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) EXPECT_EQ(a.endpoints(e), b.endpoints(e));
}

}  // namespace
}  // namespace qplec
