// The CI smoke manifest, shared by every test that must cover exactly the
// scenarios CI's smoke + golden gates run.
//
// Mirrors examples/manifests/smoke.txt; keep in sync (tests cannot portably
// locate the file at runtime, so the lines live here ONCE and the manifest
// stays the single source for CI).
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "src/runtime/scenarios.hpp"

namespace qplec {
namespace test_support {

inline std::vector<Scenario> smoke_scenarios() {
  static const char* const kSmokeManifest[] = {
      "cycle 31 two_delta practical 42",
      "complete 12 two_delta practical 42",
      "regular 40 random_lists practical 42",
      "tree 70 two_delta practical 42",
      "complete 8 two_delta paper 42",
  };
  std::vector<Scenario> out;
  for (const char* line : kSmokeManifest) {
    Scenario s;
    EXPECT_TRUE(parse_scenario_line(line, &s)) << line;
    out.push_back(s);
  }
  return out;
}

}  // namespace test_support
}  // namespace qplec
