// Property-based tests: randomized operation sequences checked against
// straightforward reference models (std::set and brute force), plus
// whole-pipeline invariants swept across many seeds.
//
// The PropertyFuzz suite is the property/fuzz tier (ctest label `property`):
// seeded random-graph sweeps asserting that the NeighborColorCache path and
// the full-rescan path solve bit-identically and properly on every instance,
// and that the batched incremental greedy sweep matches a straightforward
// per-class reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/coloring/conflict.hpp"
#include "src/coloring/greedy.hpp"
#include "src/coloring/initial.hpp"
#include "src/coloring/palette.hpp"
#include "src/coloring/validate.hpp"
#include "src/common/rng.hpp"
#include "src/core/recolor.hpp"
#include "src/core/solver.hpp"
#include "src/dist/process_backend.hpp"
#include "src/graph/builder.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/subset.hpp"
#include "src/runtime/batch_solver.hpp"
#include "src/runtime/scenarios.hpp"
#include "src/service/solve_service.hpp"

namespace qplec {
namespace {

TEST(Properties, ColorListMatchesSetModel) {
  Rng rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    std::set<Color> model;
    for (int i = 0; i < 40; ++i) {
      model.insert(static_cast<Color>(rng.next_below(200)));
    }
    ColorList list(std::vector<Color>(model.begin(), model.end()));
    // Random removals keep the two in sync.
    for (int op = 0; op < 60; ++op) {
      const Color c = static_cast<Color>(rng.next_below(200));
      EXPECT_EQ(list.remove(c), model.erase(c) > 0);
      EXPECT_EQ(list.size(), static_cast<int>(model.size()));
      const Color probe = static_cast<Color>(rng.next_below(200));
      EXPECT_EQ(list.contains(probe), model.count(probe) > 0);
    }
    // Range queries against the model.
    for (int q = 0; q < 10; ++q) {
      const Color lo = static_cast<Color>(rng.next_below(200));
      const Color hi = lo + static_cast<Color>(rng.next_below(60));
      int expected = 0;
      for (const Color c : model) {
        expected += (c >= lo && c < hi) ? 1 : 0;
      }
      EXPECT_EQ(list.count_in_range(lo, hi), expected);
      EXPECT_EQ(list.restricted_to_range(lo, hi).size(), expected);
    }
  }
}

TEST(Properties, MinExcludingMatchesBruteForce) {
  Rng rng(505);
  for (int trial = 0; trial < 200; ++trial) {
    std::set<Color> members;
    const int size = 1 + static_cast<int>(rng.next_below(20));
    while (static_cast<int>(members.size()) < size) {
      members.insert(static_cast<Color>(rng.next_below(40)));
    }
    std::set<Color> forbidden;
    const int fsize = static_cast<int>(rng.next_below(25));
    while (static_cast<int>(forbidden.size()) < fsize) {
      forbidden.insert(static_cast<Color>(rng.next_below(40)));
    }
    const ColorList list(std::vector<Color>(members.begin(), members.end()));
    const std::vector<Color> fvec(forbidden.begin(), forbidden.end());
    Color expected = kUncolored;
    for (const Color c : members) {
      if (!forbidden.count(c)) {
        expected = c;
        break;
      }
    }
    EXPECT_EQ(list.min_excluding(fvec), expected);
  }
}

TEST(Properties, EdgeSubsetMatchesSetModel) {
  Rng rng(606);
  const int universe = 64;
  EdgeSubset subset(universe);
  std::set<EdgeId> model;
  for (int op = 0; op < 500; ++op) {
    const auto e = static_cast<EdgeId>(rng.next_below(universe));
    if (rng.next_bool(0.5)) {
      subset.insert(e);
      model.insert(e);
    } else {
      subset.erase(e);
      model.erase(e);
    }
    EXPECT_EQ(subset.size(), static_cast<int>(model.size()));
    EXPECT_EQ(subset.contains(e), model.count(e) > 0);
  }
  const auto vec = subset.to_vector();
  EXPECT_TRUE(std::equal(vec.begin(), vec.end(), model.begin(), model.end()));
}

TEST(Properties, BuilderDedupMatchesSetModel) {
  Rng rng(707);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 12;
    GraphBuilder b(n);
    std::set<std::pair<NodeId, NodeId>> model;
    for (int i = 0; i < 80; ++i) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (u == v) continue;
      b.add_edge(u, v);
      model.insert({std::min(u, v), std::max(u, v)});
    }
    const Graph g = b.build();
    ASSERT_EQ(g.num_edges(), static_cast<int>(model.size()));
    auto it = model.begin();
    for (EdgeId e = 0; e < g.num_edges(); ++e, ++it) {
      EXPECT_EQ(g.endpoints(e).u, it->first);
      EXPECT_EQ(g.endpoints(e).v, it->second);
    }
  }
}

TEST(Properties, SumOfDegreesIsTwiceEdges) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Graph g = make_gnp(40, 0.2, seed);
    std::int64_t total = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) total += g.degree(v);
    EXPECT_EQ(total, 2LL * g.num_edges());
    // Handshake for the line graph too: sum of edge degrees = 2 * (number of
    // adjacent edge pairs).
    std::int64_t edge_total = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) edge_total += g.edge_degree(e);
    EXPECT_EQ(edge_total % 2, 0);
  }
}

TEST(Properties, SolverInvariantTelemetryAcrossSeeds) {
  // The recorded lemma-tightness extremes must respect the proofs on every
  // instance (they are also asserted internally; this checks the telemetry
  // plumbing end to end).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = make_gnp(36, 0.3, seed).with_scrambled_ids(36 * 36, seed);
    if (g.num_edges() == 0) continue;
    Policy pol = Policy::practical();
    pol.base_degree_threshold = 8;
    const auto res = Solver(pol).solve(make_two_delta_instance(g));
    EXPECT_LE(res.stats.max_defect_ratio, 1.0 + 1e-9) << seed;
    EXPECT_LE(res.stats.max_eq2_ratio, 1.0 + 1e-9) << seed;
    EXPECT_GE(res.stats.max_depth, 0);
    EXPECT_LE(res.stats.max_depth, pol.max_depth);
  }
}

TEST(Properties, PartitionCoversEveryColorExactlyOnce) {
  Rng rng(808);
  for (int trial = 0; trial < 100; ++trial) {
    const Color C = 1 + static_cast<Color>(rng.next_below(5000));
    const int p = 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(C)));
    const PalettePartition part = PalettePartition::uniform(C, p);
    for (int probe = 0; probe < 20; ++probe) {
      const Color c = static_cast<Color>(rng.next_below(static_cast<std::uint64_t>(C)));
      const int i = part.part_of(c);
      EXPECT_GE(c, part.part_begin(i));
      EXPECT_LT(c, part.part_end(i));
    }
  }
}

TEST(Properties, ScrambledIdsPreserveStructureOnlyRelabelled) {
  const Graph a = make_random_regular(30, 4, 5);
  const Graph b = a.with_scrambled_ids(900, 77);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.endpoints(e), b.endpoints(e));  // topology identical
  }
}

// ---------------------------------------------------------------------------
// PropertyFuzz: the seeded random-graph sweep of the cache differential.
// ---------------------------------------------------------------------------

// family x size x seed sweep: every instance solves bit-identically with the
// neighbor cache on and off, and both outputs are proper list colorings.
TEST(PropertyFuzz, CacheOnOffBitIdenticalAcrossRandomGraphSweep) {
  struct Case {
    GraphFamily family;
    int size;
    int aux;
  };
  const Case cases[] = {
      {GraphFamily::kGnp, 30, 0},       {GraphFamily::kGnp, 44, 0},
      {GraphFamily::kRegular, 32, 6},   {GraphFamily::kRegular, 48, 4},
      {GraphFamily::kPowerLaw, 60, 10}, {GraphFamily::kTree, 50, 0},
      {GraphFamily::kTorus, 5, 0},
  };
  const ListFlavor flavors[] = {ListFlavor::kTwoDelta, ListFlavor::kRandomDegPlusOne};
  int swept = 0;
  for (const Case& c : cases) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Scenario scenario{c.family, c.size, flavors[seed % 2],
                              PolicyKind::kPractical, seed, c.aux};
      const ListEdgeColoringInstance instance = build_instance(scenario);
      if (instance.graph.num_edges() == 0) continue;
      ++swept;

      ExecConfig cached;  // default: cache on
      ExecConfig uncached;
      uncached.use_neighbor_cache = false;
      const SolveResult with_cache =
          Solver(Policy::practical(), cached).solve(instance);
      const SolveResult without_cache =
          Solver(Policy::practical(), uncached).solve(instance);

      EXPECT_EQ(hash_coloring(with_cache.colors), hash_coloring(without_cache.colors))
          << scenario.name();
      EXPECT_EQ(with_cache.colors, without_cache.colors) << scenario.name();
      EXPECT_EQ(with_cache.rounds, without_cache.rounds) << scenario.name();
      EXPECT_EQ(with_cache.raw_rounds, without_cache.raw_rounds) << scenario.name();
      EXPECT_TRUE(is_proper_edge_coloring(instance.graph, with_cache.colors))
          << scenario.name();
      EXPECT_TRUE(is_valid_list_coloring(instance, with_cache.colors)) << scenario.name();
      EXPECT_TRUE(is_valid_list_coloring(instance, without_cache.colors))
          << scenario.name();
    }
  }
  EXPECT_GE(swept, 25);  // the sweep must not silently degenerate
}

// The round-loop schedule sweep: superstep fusion on/off x validation tier
// {off, sampled, every_round} must leave every fingerprint — colors, rounds,
// raw rounds, the full ledger report — bit-identical to the reference
// schedule (unfused, every_round) on a seeded random-graph sweep.  The
// schedule knobs only reorganize sweeps and skip pure-assert walks; nothing
// an edge observes may change.
TEST(PropertyFuzz, FusionAndValidationTierBitIdenticalAcrossRandomSweep) {
  struct Case {
    GraphFamily family;
    int size;
    int aux;
  };
  const Case cases[] = {
      {GraphFamily::kGnp, 36, 0},
      {GraphFamily::kRegular, 40, 6},
      {GraphFamily::kPowerLaw, 60, 10},
  };
  int swept = 0;
  for (const Case& c : cases) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Scenario scenario{c.family, c.size,
                              seed % 2 ? ListFlavor::kTwoDelta
                                       : ListFlavor::kRandomDegPlusOne,
                              PolicyKind::kPractical, seed, c.aux};
      const ListEdgeColoringInstance instance = build_instance(scenario);
      if (instance.graph.num_edges() == 0) continue;
      ++swept;

      ExecConfig reference_config;
      reference_config.fuse_supersteps = false;
      reference_config.validation_tier = ValidationTier::kEveryRound;
      const SolveResult reference =
          Solver(Policy::practical(), reference_config).solve(instance);

      for (const bool fuse : {true, false}) {
        for (const ValidationTier tier :
             {ValidationTier::kOff, ValidationTier::kSampled,
              ValidationTier::kEveryRound}) {
          ExecConfig config;
          config.fuse_supersteps = fuse;
          config.validation_tier = tier;
          const SolveResult res = Solver(Policy::practical(), config).solve(instance);
          const std::string tag = scenario.name() + (fuse ? " fused" : " split") +
                                  " tier=" + validation_tier_name(tier);
          EXPECT_EQ(res.colors, reference.colors) << tag;
          EXPECT_EQ(res.rounds, reference.rounds) << tag;
          EXPECT_EQ(res.raw_rounds, reference.raw_rounds) << tag;
          EXPECT_EQ(res.round_report, reference.round_report) << tag;
        }
      }
    }
  }
  EXPECT_GE(swept, 8);  // the sweep must not silently degenerate
}

// The batched incremental class sweep (delta-fed forbidden sets, small
// classes fused into one region) against a straightforward reference: one
// class at a time, forbidden rebuilt by a full neighborhood rescan.  The
// scrambled-id initial coloring gives a huge palette of tiny classes, so the
// quantum and the intra-batch independence check both exercise.
TEST(PropertyFuzz, BatchedGreedySweepMatchesPerClassReference) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g =
        make_gnp(26, 0.25, seed).with_scrambled_ids(26 * 26, seed + 10);
    if (g.num_edges() == 0) continue;
    const auto instance = make_random_list_instance(g, 2 * (g.max_edge_degree() + 1), seed);
    const LineGraphConflict view(g, EdgeSubset::all(g));
    const InitialColoring init = initial_edge_coloring_from_ids(g);

    std::vector<Color> batched(static_cast<std::size_t>(g.num_edges()), kUncolored);
    RoundLedger ledger;
    greedy_by_classes(view, instance.lists, init.colors, init.palette, batched, ledger);

    // Reference: classes in increasing order, forbidden from a full rescan.
    std::vector<Color> reference(static_cast<std::size_t>(g.num_edges()), kUncolored);
    std::map<std::uint64_t, std::vector<int>> classes;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      classes[init.colors[static_cast<std::size_t>(e)]].push_back(e);
    }
    for (const auto& [cls, items] : classes) {
      (void)cls;
      for (const int i : items) {
        std::vector<Color> forbidden;
        view.for_each_neighbor(i, [&](int f) {
          if (reference[static_cast<std::size_t>(f)] != kUncolored) {
            forbidden.push_back(reference[static_cast<std::size_t>(f)]);
          }
        });
        std::sort(forbidden.begin(), forbidden.end());
        reference[static_cast<std::size_t>(i)] =
            instance.lists[static_cast<std::size_t>(i)].min_excluding(forbidden);
      }
    }
    EXPECT_EQ(batched, reference) << "seed " << seed;
    EXPECT_TRUE(is_proper_on_conflict(view, batched, serial_backend())) << "seed " << seed;
  }
}

// Churn sweep: random graphs x random churn batches.  Every repair must
// produce a proper list coloring of the mutated instance, keep every
// survivor's pre-churn color verbatim (the bounded-drift invariant), solve
// bit-identically serial vs sharded, and — on the forced-fallback leg —
// match the from-scratch solve of the same mutated instance exactly.
TEST(PropertyFuzz, ChurnRepairInvariantsAcrossRandomSweep) {
  struct Case {
    GraphFamily family;
    int size;
    int aux;
  };
  const Case cases[] = {
      {GraphFamily::kGnp, 30, 0},
      {GraphFamily::kRegular, 48, 4},
      {GraphFamily::kPowerLaw, 60, 10},
      {GraphFamily::kTree, 50, 0},
  };
  int swept = 0;
  for (const Case& c : cases) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Scenario scenario{c.family, c.size,
                              seed % 2 ? ListFlavor::kTwoDelta
                                       : ListFlavor::kRandomDegPlusOne,
                              PolicyKind::kPractical, seed, c.aux};
      const ListEdgeColoringInstance instance = build_instance(scenario);
      if (instance.graph.num_edges() < 8) continue;
      ++swept;
      const SolveResult base = Solver(Policy::practical()).solve(instance);
      const ChurnBatch batch = make_random_churn(instance.graph, 3, 3, seed * 31);
      const RecolorPlan plan = plan_recolor(instance, base.colors, batch.ops);
      ASSERT_EQ(static_cast<int>(plan.region.size()), 3) << scenario.name();

      const RecolorOutcome serial =
          repair_recolor(plan, Policy::practical(), ExecConfig{});
      EXPECT_FALSE(serial.fallback) << scenario.name();
      EXPECT_TRUE(is_valid_list_coloring(plan.mutated, serial.result.colors))
          << scenario.name();
      for (std::size_t e = 0; e < plan.carried.size(); ++e) {
        if (plan.carried[e] != kUncolored) {
          ASSERT_EQ(serial.result.colors[e], plan.carried[e])
              << scenario.name() << " edge " << e << " drifted";
        }
      }

      ExecConfig sharded;
      sharded.shards = 2;
      sharded.min_sharded_edges = 0;
      const RecolorOutcome dist = repair_recolor(plan, Policy::practical(), sharded);
      EXPECT_EQ(dist.result.colors, serial.result.colors) << scenario.name();
      EXPECT_EQ(dist.result.rounds, serial.result.rounds) << scenario.name();

      ExecConfig no_budget;
      no_budget.recolor_budget = 0;  // <= 0: always fall back (region non-empty)
      const RecolorOutcome fallback =
          repair_recolor(plan, Policy::practical(), no_budget);
      EXPECT_TRUE(fallback.fallback) << scenario.name();
      const SolveResult scratch =
          Solver(Policy::practical(), no_budget).solve(plan.mutated);
      EXPECT_EQ(fallback.result.colors, scratch.colors) << scenario.name();
      EXPECT_EQ(fallback.result.rounds, scratch.rounds) << scenario.name();
    }
  }
  EXPECT_GE(swept, 10);  // the sweep must not silently degenerate
}

// The same random family x size x seed sweep submitted through the
// SolveService front door: every async, priority-queued, cancellable-path
// outcome must be bit-identical to the direct Solver::solve of the same
// scenario (and hash-stable under concurrent workers).
TEST(PropertyFuzz, ServiceSubmissionMatchesDirectSolveAcrossRandomSweep) {
  struct Case {
    GraphFamily family;
    int size;
    int aux;
  };
  const Case cases[] = {
      {GraphFamily::kGnp, 30, 0},     {GraphFamily::kRegular, 48, 4},
      {GraphFamily::kPowerLaw, 60, 10}, {GraphFamily::kTree, 50, 0},
      {GraphFamily::kTorus, 5, 0},
  };
  const ListFlavor flavors[] = {ListFlavor::kTwoDelta, ListFlavor::kRandomDegPlusOne};

  SolveService service(ExecConfig{.workers = 4});
  std::vector<Scenario> scenarios;
  std::vector<SolveTicket> tickets;
  for (const Case& c : cases) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Scenario scenario{c.family, c.size, flavors[seed % 2],
                              PolicyKind::kPractical, seed, c.aux};
      scenarios.push_back(scenario);
      tickets.push_back(service.submit(
          SolveRequest::from_scenario(scenario).priority(static_cast<int>(seed))));
    }
  }

  int swept = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const SolveOutcome& out = tickets[i].wait();
    ASSERT_EQ(out.status, SolveStatus::kOk) << scenarios[i].name() << ": " << out.error;
    const ListEdgeColoringInstance instance = build_instance(scenarios[i]);
    if (instance.graph.num_edges() == 0) continue;
    ++swept;
    const SolveResult direct = Solver(Policy::practical()).solve(instance);
    EXPECT_EQ(out.colors_hash, hash_coloring(direct.colors)) << scenarios[i].name();
    EXPECT_EQ(out.result.colors, direct.colors) << scenarios[i].name();
    EXPECT_EQ(out.result.rounds, direct.rounds) << scenarios[i].name();
    EXPECT_EQ(out.result.raw_rounds, direct.raw_rounds) << scenarios[i].name();
    EXPECT_TRUE(out.valid) << scenarios[i].name();
    EXPECT_TRUE(is_valid_list_coloring(instance, out.result.colors)) << scenarios[i].name();
  }
  EXPECT_GE(swept, 12);  // the sweep must not silently degenerate
}

// The process-backend rank sweep: real forked message-passing workers must
// reproduce the serial solve bit for bit — colors, round counts, the full
// ledger report — across random families and rank counts (including ranks
// that do not divide the edge count evenly).  This is the PropertyFuzz
// analogue of the smoke differential in test_process_backend.cpp, over
// instances nobody hand-picked.
TEST(PropertyFuzz, ProcessBackendBitIdenticalToSerialAcrossRandomSweep) {
  struct Case {
    GraphFamily family;
    int size;
    int aux;
  };
  const Case cases[] = {
      {GraphFamily::kGnp, 36, 0},
      {GraphFamily::kRegular, 40, 5},
      {GraphFamily::kPowerLaw, 48, 8},
      {GraphFamily::kTree, 45, 0},
  };
  const int rank_counts[] = {2, 5};
  int swept = 0;
  for (const Case& c : cases) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const Scenario scenario{c.family, c.size,
                              seed % 2 ? ListFlavor::kTwoDelta : ListFlavor::kRandomDegPlusOne,
                              PolicyKind::kPractical, seed, c.aux};
      const ListEdgeColoringInstance instance = build_instance(scenario);
      if (instance.graph.num_edges() == 0) continue;
      ++swept;
      const SolveResult serial = Solver(Policy::practical()).solve(instance);
      for (const int ranks : rank_counts) {
        ExecConfig config;
        config.backend = BackendKind::kProcess;
        config.ranks = ranks;
        const SolveResult res = Solver(Policy::practical(), config).solve(instance);
        EXPECT_EQ(res.colors, serial.colors) << scenario.name() << " ranks=" << ranks;
        EXPECT_EQ(res.rounds, serial.rounds) << scenario.name() << " ranks=" << ranks;
        EXPECT_EQ(res.raw_rounds, serial.raw_rounds)
            << scenario.name() << " ranks=" << ranks;
        EXPECT_EQ(res.round_report, serial.round_report)
            << scenario.name() << " ranks=" << ranks;
        EXPECT_TRUE(is_valid_list_coloring(instance, res.colors))
            << scenario.name() << " ranks=" << ranks;
      }
    }
  }
  EXPECT_GE(swept, 7);  // the sweep must not silently degenerate
}

// The greedy batch quantum is a pure batching knob: any quantum (batching
// disabled included) leaves the full solve bit-identical to the default.
TEST(PropertyFuzz, GreedyBatchQuantumBitIdenticalAcrossSweep) {
  const int quanta[] = {1, 32, 512};
  int swept = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Scenario scenario{GraphFamily::kGnp, 40, ListFlavor::kTwoDelta,
                            PolicyKind::kPractical, seed, 0};
    const ListEdgeColoringInstance instance = build_instance(scenario);
    if (instance.graph.num_edges() == 0) continue;
    ++swept;
    const SolveResult reference = Solver(Policy::practical()).solve(instance);
    for (const int quantum : quanta) {
      ExecConfig config;
      config.greedy_batch_quantum = quantum;
      const SolveResult res = Solver(Policy::practical(), config).solve(instance);
      EXPECT_EQ(res.colors, reference.colors) << scenario.name() << " quantum=" << quantum;
      EXPECT_EQ(res.rounds, reference.rounds) << scenario.name() << " quantum=" << quantum;
      EXPECT_EQ(res.round_report, reference.round_report)
          << scenario.name() << " quantum=" << quantum;
    }
  }
  EXPECT_GE(swept, 3);
}

}  // namespace
}  // namespace qplec

// Custom main: the worker guard MUST run before gtest — the process-backend
// rank sweep re-execs this binary as its rank workers, and the guard routes
// those invocations into the rank protocol instead of the test suite.
int main(int argc, char** argv) {
  qplec::process_worker_guard(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
